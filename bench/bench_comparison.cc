// E6 — method comparison: Algorithm 1 vs the edge-DP Laplace release
// (weaker privacy model, Section 1.2) vs the naive node-DP release
// (Lap((n-1)/ε), the obstacle motivating the paper) vs fixed-Δ ablations.
//
// The qualitative shape the paper implies: ours ≈ edge-DP up to
// polylog factors on graphs with small Δ*, while naive node-DP is off by a
// factor ~n; fixed-Δ matches ours only when the guess happens to be right.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_trials.h"
#include "core/baselines.h"
#include "core/extension_family.h"
#include "core/private_cc.h"
#include "eval/stats.h"
#include "eval/table.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "util/random.h"
#include "util/status.h"

int main() {
  using namespace nodedp;
  std::printf(
      "E6: ours vs baselines, epsilon = 1, trials = 100, f_cc release\n\n");

  const double epsilon = 1.0;
  const int trials = 100;

  struct Workload {
    std::string name;
    Graph graph;
  };
  Rng wrng(660);
  std::vector<Workload> workloads;
  workloads.push_back({"entity(300,4)", gen::RandomEntityGraph(300, 4, wrng)});
  workloads.push_back({"gnp(400,c=1)", gen::ErdosRenyi(400, 1.0 / 400, wrng)});
  workloads.push_back(
      {"geometric(300)", gen::RandomGeometric(300, 0.05, wrng)});
  workloads.push_back({"paths+isolated",
                       gen::DisjointUnion({gen::Path(150), gen::Empty(100),
                                           gen::Path(80)})});

  Table table({"workload", "true cc", "method", "median|err|", "p90|err|"});
  for (Workload& w : workloads) {
    const double truth = CountConnectedComponents(w.graph);
    ExtensionFamily family(w.graph);
    Rng rng(661);
    // Each trial evaluates all five methods from its own child stream.
    struct MethodErrors {
      double ours = 0.0;
      double edge = 0.0;
      double naive = 0.0;
      double fixed2 = 0.0;
      double fixed32 = 0.0;
    };
    const auto results = bench::RunWarmedTrials(
        rng, trials, [&](Rng& child) -> Result<MethodErrors> {
          const auto release =
              PrivateConnectedComponents(family, epsilon, child);
          if (!release.ok()) return release.status();
          MethodErrors errs;
          errs.ours = release->estimate - truth;
          errs.edge =
              EdgeDpConnectedComponents(w.graph, epsilon, child) - truth;
          errs.naive =
              NaiveNodeDpConnectedComponents(w.graph, epsilon, child) - truth;
          errs.fixed2 =
              FixedDeltaNodeDpConnectedComponents(w.graph, 2, epsilon, child)
                  .value() -
              truth;
          errs.fixed32 =
              FixedDeltaNodeDpConnectedComponents(w.graph, 32, epsilon, child)
                  .value() -
              truth;
          return errs;
        });
    std::vector<double> ours;
    std::vector<double> edge;
    std::vector<double> naive;
    std::vector<double> fixed2;
    std::vector<double> fixed32;
    bool failed = false;
    for (const auto& trial : results) {
      if (!trial.ok()) {
        std::fprintf(stderr, "%s: %s\n", w.name.c_str(),
                     trial.status().ToString().c_str());
        failed = true;
        break;
      }
      ours.push_back(trial->ours);
      edge.push_back(trial->edge);
      naive.push_back(trial->naive);
      fixed2.push_back(trial->fixed2);
      fixed32.push_back(trial->fixed32);
    }
    if (failed) continue;
    auto row = [&](const char* method, const std::vector<double>& errs) {
      const ErrorSummary s = SummarizeErrors(errs);
      table.Cell(w.name)
          .Cell(truth, 0)
          .Cell(method)
          .Cell(s.median_abs, 2)
          .Cell(s.p90_abs, 2);
      table.EndRow();
    };
    row("ours (Alg.1)", ours);
    row("edge-DP Lap(1/e)", edge);
    row("naive Lap(n/e)", naive);
    row("fixed D=2", fixed2);
    row("fixed D=32", fixed32);
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: ours within a small polylog factor of edge-DP;\n"
      "naive worse by ~n; fixed D=32 pays 16x the noise of D=2 whenever\n"
      "D=2 suffices, while fixed D=2 is badly biased if Delta* > 2.\n");
  return 0;
}

#!/usr/bin/env python3
"""Diff two nodedp-bench-v1 JSON artifacts (BENCH_*.json).

Prints a per-benchmark table of baseline vs current real_ns with the
relative delta, so the perf trajectory across revisions is visible in CI
logs. Records are keyed strictly by (suite, record name) — two suites may
reuse a record name without colliding, and a file that repeats a name
within one suite is malformed and rejected outright (a silent
last-one-wins would make the comparison lie about whichever record was
shadowed).

Direction convention: real_ns is a time, so LOWER is better and a
regression is current/baseline above the threshold. Counters whose name
ends in `_speedup` are ratios where HIGHER is better (sweep_speedup,
construct_speedup, tiered_speedup, ...), so for them the comparison is
inverted: a regression is baseline/current above the threshold — i.e. the
speedup *fell* by that factor. Getting this backwards either flags every
improvement as a regression or waves real regressions through, which is
why bench/test_compare_bench.py pins the convention and CI runs it.
Non-`_speedup` counters are contextual (sizes, percentiles already
covered by real_ns records) and are not gated.

Benchmarks present in only one side are never an error: a record new in
the current run has no baseline to regress against, so it is reported as
"new record (no baseline): skipped" and ignored by --strict. Refresh the
baseline to start gating it.

Exit status: 0 unless --strict is given, in which case any benchmark whose
real_ns grew — or whose `_speedup` counter shrank — by more than
--threshold (default 1.25, i.e. 25%) fails the run. CI's smoke timings
are noisy by design, so the bench-smoke step runs without --strict as a
trend line; the bench-regression gate runs --strict with a deliberately
loose threshold to catch only catastrophic regressions.

A missing baseline file is not an error: the first run of a new suite (or
a fresh checkout without bench/baselines/) has nothing to compare against,
so the script says so and exits 0 rather than failing the pipeline.

Usage:
  compare_bench.py BASELINE.json CURRENT.json [--threshold 1.25] [--strict]
"""

import argparse
import json
import os
import sys


def load_report(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    schema = doc.get("schema")
    if schema != "nodedp-bench-v1":
        raise SystemExit(f"{path}: unsupported schema {schema!r}")
    suite = doc.get("suite")
    if not isinstance(suite, str) or not suite:
        raise SystemExit(f"{path}: missing suite name")
    benches = {}
    speedups = {}
    for record in doc.get("benchmarks", []):
        name = record.get("name")
        real_ns = record.get("real_ns")
        if name is None or not isinstance(real_ns, (int, float)):
            continue
        key = (suite, name)
        if key in benches:
            raise SystemExit(
                f"{path}: duplicate record {name!r} in suite {suite!r} — "
                f"each (suite, name) pair must be unique within a file")
        benches[key] = float(real_ns)
        counters = record.get("counters", {})
        if isinstance(counters, dict):
            for counter, value in counters.items():
                if not counter.endswith("_speedup"):
                    continue
                if not isinstance(value, (int, float)):
                    continue
                speedups[(suite, name, counter)] = float(value)
    return doc, benches, speedups


def format_key(key):
    return ":".join(key)


def format_ns(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:.2f}s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f}ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f}us"
    return f"{ns:.0f}ns"


def main():
    parser = argparse.ArgumentParser(
        description="Diff two nodedp-bench-v1 JSON artifacts.")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold", type=float, default=1.25,
        help="regression ratio: real_ns growth (or _speedup shrinkage) "
             "past this is flagged (default 1.25)")
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero if any benchmark regresses past the threshold")
    args = parser.parse_args()

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline}: nothing to compare against "
              f"(first run of this suite?); skipping comparison")
        return 0

    base_doc, base, base_speedups = load_report(args.baseline)
    cur_doc, cur, cur_speedups = load_report(args.current)

    print(f"baseline: {args.baseline} (git_rev {base_doc.get('git_rev')}, "
          f"threads {base_doc.get('threads')})")
    print(f"current:  {args.current} (git_rev {cur_doc.get('git_rev')}, "
          f"threads {cur_doc.get('threads')})")
    print()

    shared = [key for key in cur if key in base]
    only_base = sorted(key for key in base if key not in cur)
    only_cur = sorted(key for key in cur if key not in base)

    regressions = []
    if shared:
        width = max(len(format_key(key)) for key in shared)
        header = (f"{'benchmark':<{width}}  {'baseline':>10}  "
                  f"{'current':>10}  {'delta':>8}")
        print(header)
        print("-" * len(header))
        for key in shared:
            ratio = cur[key] / base[key] if base[key] > 0 else float("inf")
            delta = (ratio - 1.0) * 100.0
            flag = ""
            if ratio > args.threshold:
                flag = "  << REGRESSION"
                regressions.append((format_key(key), ratio))
            print(f"{format_key(key):<{width}}  {format_ns(base[key]):>10}  "
                  f"{format_ns(cur[key]):>10}  {delta:>+7.1f}%{flag}")
    else:
        print("no benchmarks in common")

    shared_speedups = sorted(k for k in cur_speedups if k in base_speedups)
    if shared_speedups:
        print()
        width = max(len(format_key(key)) for key in shared_speedups)
        header = (f"{'speedup counter (higher is better)':<{width}}  "
                  f"{'baseline':>9}  {'current':>9}  {'delta':>8}")
        print(header)
        print("-" * len(header))
        for key in shared_speedups:
            base_value = base_speedups[key]
            cur_value = cur_speedups[key]
            # Inverted direction: the regression ratio is how far the
            # speedup FELL, so baseline/current — not current/baseline.
            ratio = base_value / cur_value if cur_value > 0 else float("inf")
            delta = (cur_value / base_value - 1.0) * 100.0 \
                if base_value > 0 else float("inf")
            flag = ""
            if ratio > args.threshold:
                flag = "  << REGRESSION"
                regressions.append((format_key(key), ratio))
            print(f"{format_key(key):<{width}}  {base_value:>8.2f}x  "
                  f"{cur_value:>8.2f}x  {delta:>+7.1f}%{flag}")

    for key in only_base:
        print(f"removed: {format_key(key)} ({format_ns(base[key])}) — "
              f"not in current run, not gated")
    for key in only_cur:
        print(f"new record (no baseline): skipped {format_key(key)} "
              f"({format_ns(cur[key])}) — refresh the baseline to gate it")

    print()
    if regressions:
        print(f"{len(regressions)} benchmark(s) regressed past "
              f"{args.threshold:.2f}x:")
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x")
        if args.strict:
            return 1
        print("(informational: smoke timings are noisy; rerun locally with "
              "--benchmark_min_time before acting)")
    else:
        total = len(shared) + len(shared_speedups)
        print(f"no regressions past {args.threshold:.2f}x "
              f"({total} shared benchmarks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// A2 — ablation of the evaluator engineering (exactness-preserving
// optimizations, docs/DESIGN_NOTES.md §1): repair/local-search fast path,
// component
// decomposition, support-component heuristic separation, and the shared
// cut pool. All four must leave every value unchanged; the table reports
// the speedups and verifies value equality on each workload.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <utility>
#include <vector>

#include "core/extension_family.h"
#include "eval/table.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "util/random.h"

namespace {

using namespace nodedp;
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               start)
             .count() /
         1000.0;
}

// Evaluates the whole GEM grid through a fresh family; returns (sum of
// values, elapsed ms).
std::pair<double, double> RunGrid(const Graph& g,
                                  const ExtensionOptions& options) {
  const auto start = Clock::now();
  ExtensionFamily family(g, options);
  double checksum = 0.0;
  for (long long delta = 1; delta <= g.NumVertices(); delta *= 2) {
    const auto value = family.Value(static_cast<double>(delta));
    if (!value.ok()) {
      std::fprintf(stderr, "eval failed: %s\n",
                   value.status().ToString().c_str());
      return {-1.0, MsSince(start)};
    }
    checksum += *value;
  }
  return {checksum, MsSince(start)};
}

}  // namespace

int main() {
  std::printf("A2: evaluator ablations (values must be identical)\n\n");

  Rng wrng(820);
  struct Workload {
    const char* name;
    Graph graph;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"gnp(200,c=2)", gen::ErdosRenyi(200, 2.0 / 200, wrng)});
  workloads.push_back({"grid(10x12)", gen::Grid(10, 12)});
  workloads.push_back({"tree-like(200)",
                       gen::RandomTreeLike(200, 3, 0.2, wrng)});
  workloads.push_back({"entity(80,4)", gen::RandomEntityGraph(80, 4, wrng)});

  Table table({"workload", "variant", "grid checksum", "time ms",
               "values equal"});
  for (Workload& w : workloads) {
    ExtensionOptions full;  // all optimizations on
    const auto baseline = RunGrid(w.graph, full);

    auto variant = [&](const char* name, ExtensionOptions options) {
      const auto run = RunGrid(w.graph, options);
      table.Cell(w.name)
          .Cell(name)
          .Cell(run.first, 3)
          .Cell(run.second, 1)
          .Cell(std::abs(run.first - baseline.first) < 1e-5 ? "yes" : "NO");
      table.EndRow();
    };

    table.Cell(w.name)
        .Cell("all optimizations")
        .Cell(baseline.first, 3)
        .Cell(baseline.second, 1)
        .Cell("yes");
    table.EndRow();

    ExtensionOptions no_fast = full;
    no_fast.use_repair_fast_path = false;
    variant("no fast path", no_fast);

    ExtensionOptions no_decompose = full;
    no_decompose.decompose_components = false;
    variant("no decomposition", no_decompose);

    ExtensionOptions no_heuristic = full;
    no_heuristic.polytope.use_support_heuristic = false;
    variant("no support heuristic", no_heuristic);
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected: every 'values equal' reads yes (the optimizations are\n"
      "exactness-preserving); 'all optimizations' is the fastest row per\n"
      "workload, with the fast path mattering most on tree-like inputs.\n");
  return 0;
}

// S3 — streaming-update bench: the delta path behind `add_edges`.
//
// Workload: many moderate G(n, p) blocks (100 vertices, mean degree ~3 —
// components big enough that per-component warm work dominates dispatch,
// small enough that each LP is quick), with a ~1%-of-edges insert batch
// confined to ~8% of the blocks plus a few block-merging edges. Locality is
// the point: a streaming delta touches few components, so incremental
// maintenance re-solves only those and adopts the rest.
//
// Measures:
//   base_warm           deferred family construction + full-grid warm on
//                       the pre-update graph (context, not the comparison)
//   delta_apply         Graph::ApplyEdgeDelta — sorted merge + CSR rebuild
//   incremental_rewarm  incremental ExtensionFamily from the warmed base +
//                       re-warm of the invalidated cells only
//   cold_rebuild        deferred family + full-grid warm on the patched
//                       graph — what the update would cost without the
//                       incremental path
//
// Acceptance counter: delta_speedup = cold_rebuild / (delta_apply +
// incremental_rewarm), bar >= 5x at the default size. The equivalence
// check (incremental Values() bit-identical to cold) is a hard failure,
// never a warning. NODEDP_UPDATE_STRICT makes a below-target speedup fail
// the run; NODEDP_UPDATE_VERTICES overrides the vertex count (default
// 200,000; CI smoke uses a smaller value).
//
// Emits BENCH_update.json (schema nodedp-bench-v1, see bench/README.md).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/extension_family.h"
#include "core/private_cc.h"
#include "eval/json_report.h"
#include "eval/table.h"
#include "graph/generators.h"
#include "util/random.h"

namespace {

using namespace nodedp;
using Clock = std::chrono::steady_clock;

double ElapsedNs(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start)
      .count();
}

long long TargetVertices() {
  const char* env = std::getenv("NODEDP_UPDATE_VERTICES");
  if (env != nullptr) {
    const long long parsed = std::atoll(env);
    if (parsed >= 1000) return parsed;
  }
  return 200000;
}

constexpr int kBlockSize = 100;
constexpr double kBlockAvgDegree = 3.0;
constexpr int kDeltaMax = 8;  // public degree-cap constant

}  // namespace

int main() {
  const long long target = TargetVertices();
  const int num_blocks =
      std::max(4, static_cast<int>(target / kBlockSize));
  std::printf("S3: update bench, target vertices = %lld (%d blocks)\n\n",
              target, num_blocks);

  JsonReport report("update");
  report.SetContext("target_vertices", std::to_string(target));
  report.SetContext("block_size", std::to_string(kBlockSize));

  Table table({"stage", "ms", "notes"});
  bool all_ok = true;

  auto add_record = [&report](const std::string& name, double ns,
                              std::vector<std::pair<std::string, double>>
                                  counters) {
    BenchRecord record;
    record.name = "Update/" + name;
    record.real_ns = ns;
    record.cpu_ns = ns;
    record.iterations = 1;
    record.counters = std::move(counters);
    report.Add(std::move(record));
  };

  // --- workload -------------------------------------------------------------
  Rng rng(42);
  std::vector<Graph> blocks;
  blocks.reserve(num_blocks);
  for (int b = 0; b < num_blocks; ++b) {
    blocks.push_back(
        gen::ErdosRenyi(kBlockSize, kBlockAvgDegree / kBlockSize, rng));
  }
  const Graph graph = gen::DisjointUnion(blocks);
  std::printf("workload: n=%d m=%d\n", graph.NumVertices(), graph.NumEdges());

  // The insert batch: ~1% of the edges, spread over ~8% of the blocks
  // ("hot" blocks) so each touched component gains ~12% density — the
  // streaming scenario, where an update dirties few components and leaves
  // their structure similar. Concentrating the same batch in 1% of the
  // blocks would triple their density and the fused component's LP would
  // dominate both sides of the comparison; spraying it uniformly would
  // invalidate everything. Two disjoint pairs of hot blocks also merge,
  // exercising the component-fuse path without building one giant block.
  const int hot_blocks = std::max(4, num_blocks / 12);
  const int delta_edges = std::max(16, graph.NumEdges() / 100);
  std::vector<std::pair<int, int>> batch;
  batch.reserve(static_cast<std::size_t>(delta_edges) + 4);
  while (static_cast<int>(batch.size()) < delta_edges) {
    const int block = static_cast<int>(rng.NextUint64(hot_blocks));
    const int u = block * kBlockSize +
                  static_cast<int>(rng.NextUint64(kBlockSize));
    const int v = block * kBlockSize +
                  static_cast<int>(rng.NextUint64(kBlockSize));
    if (u == v || graph.HasEdge(u, v)) continue;
    batch.emplace_back(u, v);
  }
  for (int pair = 0; pair < 2 && 2 * pair + 1 < hot_blocks; ++pair) {
    batch.emplace_back(2 * pair * kBlockSize, (2 * pair + 1) * kBlockSize);
  }
  std::printf("delta: %zu inserts across %d hot blocks\n\n", batch.size(),
              hot_blocks);

  PrivateCcOptions options;
  options.delta_max = kDeltaMax;
  const std::vector<double> grid =
      AlgorithmOneDeltaGrid(graph.NumVertices(), options);

  // --- base family: the pre-update serving state ---------------------------
  ExtensionFamily base(graph, options.extension,
                       ExtensionFamily::DeferInduction{});
  double base_ns = 0.0;
  {
    const auto start = Clock::now();
    const Status warmed = base.Warm(grid);
    base_ns = ElapsedNs(start);
    if (!warmed.ok()) {
      std::fprintf(stderr, "base warm failed: %s\n",
                   warmed.ToString().c_str());
      return 1;
    }
    table.Cell("base_warm").Cell(base_ns * 1e-6, 1).Cell("pre-update warm");
    table.EndRow();
    add_record("base_warm", base_ns,
               {{"vertices", graph.NumVertices()},
                {"edges", graph.NumEdges()}});
  }

  // --- delta apply: sorted merge + CSR rebuild ------------------------------
  const auto apply_start = Clock::now();
  const Result<Graph::EdgeDelta> delta = graph.ApplyEdgeDelta(batch);
  const double apply_ns = ElapsedNs(apply_start);
  {
    if (!delta.ok()) {
      std::fprintf(stderr, "delta apply failed: %s\n",
                   delta.status().ToString().c_str());
      return 1;
    }
    table.Cell("delta_apply")
        .Cell(apply_ns * 1e-6, 2)
        .Cell(std::to_string(delta->added.size()) + " new edges");
    table.EndRow();
    add_record("delta_apply", apply_ns,
               {{"delta_edges", static_cast<double>(delta->added.size())},
                {"duplicates", delta->duplicates}});
  }

  // --- incremental re-warm --------------------------------------------------
  double incremental_ns = 0.0;
  int adopted = 0;
  int invalidated = 0;
  std::vector<double> incremental_values;
  {
    const auto start = Clock::now();
    ExtensionFamily incremental(delta->graph, base, delta->added);
    const Status warmed = incremental.Warm(grid);
    incremental_ns = ElapsedNs(start);
    if (!warmed.ok()) {
      std::fprintf(stderr, "incremental re-warm failed: %s\n",
                   warmed.ToString().c_str());
      return 1;
    }
    adopted = incremental.components_adopted();
    invalidated = incremental.components_invalidated();
    incremental_values = incremental.Values(grid).value();
    table.Cell("incremental_rewarm")
        .Cell(incremental_ns * 1e-6, 2)
        .Cell(std::to_string(adopted) + " adopted, " +
              std::to_string(invalidated) + " rebuilt");
    table.EndRow();
  }

  // --- cold rebuild: the no-incremental-path cost ---------------------------
  double cold_ns = 0.0;
  {
    const auto start = Clock::now();
    ExtensionFamily cold(delta->graph, options.extension,
                         ExtensionFamily::DeferInduction{});
    const Status warmed = cold.Warm(grid);
    cold_ns = ElapsedNs(start);
    if (!warmed.ok()) {
      std::fprintf(stderr, "cold rebuild failed: %s\n",
                   warmed.ToString().c_str());
      return 1;
    }
    // The whole point of the incremental path is that it is invisible in
    // the values: bit-identical, or the bench fails outright.
    if (cold.Values(grid).value() != incremental_values) {
      std::fprintf(stderr,
                   "FAIL: incremental values diverge from cold rebuild\n");
      return 1;
    }
    table.Cell("cold_rebuild").Cell(cold_ns * 1e-6, 1).Cell("full re-warm");
    table.EndRow();
    add_record("cold_rebuild", cold_ns, {});
  }

  const double update_ns = apply_ns + incremental_ns;
  const double delta_speedup = cold_ns / update_ns;
  std::vector<std::pair<std::string, double>> summary_counters = {
      {"components_adopted", static_cast<double>(adopted)},
      {"components_invalidated", static_cast<double>(invalidated)},
      {"cold_ns", cold_ns},
      {"delta_speedup", delta_speedup}};
  if (const std::size_t peak = PeakRssBytes(); peak > 0) {
    summary_counters.emplace_back("peak_rss_bytes",
                                  static_cast<double>(peak));
  }
  add_record("incremental_rewarm", incremental_ns,
             std::move(summary_counters));
  table.Cell("delta_speedup")
      .Cell(delta_speedup, 2)
      .Cell("cold / (apply + incremental), target >= 5");
  table.EndRow();
  if (delta_speedup < 5.0) {
    // Report loudly but do not fail the run by default: CI smoke boxes are
    // noisy and small. The acceptance measurement is the full-size run.
    std::fprintf(stderr,
                 "WARNING: delta speedup %.2fx below the 5x target\n",
                 delta_speedup);
    all_ok = all_ok && std::getenv("NODEDP_UPDATE_STRICT") == nullptr;
  }

  table.Print(std::cout);

  const std::string path = BenchJsonPath("update");
  const Status written = report.WriteFile(path);
  if (!written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %s (%d records)\n", path.c_str(), report.num_records());
  return all_ok ? 0 : 1;
}

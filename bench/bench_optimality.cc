// E8 — Lemma 5.2 witness rate: every graph without a spanning Δ-forest has
// a proper induced subgraph H with f_Δ(G) >= f_sf(H) + (Δ-1)·d(G,H) + 1.
// We enumerate witnesses exhaustively on random small graphs; the
// satisfaction rate must be 100%. Also reports the tightness of the
// Theorem 1.11 comparison against the down-sensitivity extension.

#include <cmath>
#include <cstdio>
#include <functional>
#include <iostream>
#include <vector>

#include "core/ds_extension.h"
#include "core/lipschitz_extension.h"
#include "eval/table.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/subgraph.h"
#include "util/random.h"

int main() {
  using namespace nodedp;
  std::printf("E8: Lemma 5.2 witnesses and Theorem 1.11 competitiveness\n\n");

  Rng rng(880);
  Table table({"Delta", "applicable", "witness found", "rate%",
               "thm1.11 checked", "thm1.11 held"});
  for (int delta : {1, 2, 3}) {
    int applicable = 0;
    int witnessed = 0;
    int compared = 0;
    int competitive = 0;
    for (int trial = 0; trial < 40; ++trial) {
      const int n = 5 + static_cast<int>(rng.NextUint64(3));  // 5..7
      const Graph g = gen::ErdosRenyi(n, 0.45, rng);
      if (g.NumEdges() == 0) continue;
      const double f_delta = LipschitzExtensionValue(g, delta);
      const double f_sf = SpanningForestSize(g);
      if (std::fabs(f_delta - f_sf) < 1e-6) continue;  // has Δ-forest
      ++applicable;
      // Search all proper induced subgraphs for the Lemma 5.2 witness.
      bool found = false;
      for (uint64_t mask = 0; mask + 1 < (1ULL << n) && !found; ++mask) {
        const InducedSubgraph h = InduceByMask(g, mask);
        const int removed = n - h.graph.NumVertices();
        if (f_delta >=
            SpanningForestSize(h.graph) + (delta - 1.0) * removed + 1.0 -
                1e-6) {
          found = true;
        }
      }
      witnessed += found;
      // Theorem 1.11 against the (Δ-1)-Lipschitz DS extension (see
      // tests/optimality_test.cc for the full Err_G machinery).
      auto err_of = [&](const std::function<double(const Graph&)>& f) {
        double worst = 0.0;
        for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
          const InducedSubgraph h = InduceByMask(g, mask);
          worst = std::max(worst, std::fabs(f(h.graph) -
                                            SpanningForestSize(h.graph)));
        }
        return worst;
      };
      const double err_poly = err_of([&](const Graph& h) {
        return LipschitzExtensionValue(h, delta);
      });
      if (err_poly > 1e-6) {
        const double err_ds = err_of([&](const Graph& h) {
          return DownSensitivityExtension(
              h, delta - 1.0, [](const Graph& x) {
                return static_cast<double>(SpanningForestSize(x));
              });
        });
        ++compared;
        if (err_poly <= 2.0 * err_ds - 1.0 + 1e-6) ++competitive;
      }
    }
    table.Cell(delta)
        .Cell(applicable)
        .Cell(witnessed)
        .Cell(applicable > 0 ? 100.0 * witnessed / applicable : 100.0, 1)
        .Cell(compared)
        .Cell(competitive);
    table.EndRow();
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected: witness rate 100%% and thm1.11 held == checked on every\n"
      "row (both are proved statements; this regenerates them by search).\n");
  return 0;
}

// S1 — large-graph scale bench: end-to-end node-private connected-component
// releases on multi-million-vertex sparse graphs, the regime the CSR graph
// core exists for. Workloads are chosen so components stay small (the
// serving scenario: huge populations, bounded local structure), with
// data-independent Δ grids justified by public degree caps:
//
//   entity       union of record-cliques of size <= 4 (entity resolution);
//                public cap: record multiplicity 4 => delta_max = 4.
//   gnp-0.5/n    subcritical Erdős–Rényi, components O(log n);
//                delta_max = 32, a public constant.
//
// Reports wall-clock ns for graph construction, ExtensionFamily
// construction (component decomposition via CSR Induce), and the private
// release itself, plus Graph::MemoryBytes(), through both the console
// table and the nodedp-bench-v1 JSON artifact (BENCH_scale.json).
//
// NODEDP_SCALE_VERTICES overrides the target vertex count (default
// 1,200,000; CI smoke runs use a smaller value).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/extension_family.h"
#include "core/private_cc.h"
#include "eval/json_report.h"
#include "eval/table.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "util/random.h"

namespace {

using namespace nodedp;
using Clock = std::chrono::steady_clock;

double ElapsedNs(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start)
      .count();
}

long long TargetVertices() {
  const char* env = std::getenv("NODEDP_SCALE_VERTICES");
  if (env != nullptr) {
    const long long parsed = std::atoll(env);
    if (parsed >= 1000) return parsed;
  }
  return 1200000;
}

struct ScaleRow {
  std::string name;
  Graph graph;
  int delta_max = 0;
  double build_ns = 0.0;
};

}  // namespace

int main() {
  const long long target = TargetVertices();
  std::printf("S1: scale bench, target vertices = %lld, epsilon = 1\n\n",
              target);
  const double epsilon = 1.0;

  JsonReport report("scale");
  report.SetContext("target_vertices", std::to_string(target));

  Table table({"workload", "n", "m", "graph MB", "build ms", "family ms",
               "release ms", "|err|"});

  std::vector<ScaleRow> rows;
  {
    // Mean records per entity is 2.5, so target/2.5 entities hits the
    // vertex target in expectation.
    Rng rng(9001);
    const auto start = Clock::now();
    Graph g = gen::RandomEntityGraph(static_cast<int>(target * 2 / 5), 4,
                                     rng);
    const double build_ns = ElapsedNs(start);
    std::printf("entity: built n=%d m=%d in %.0f ms\n", g.NumVertices(),
                g.NumEdges(), build_ns * 1e-6);
    ScaleRow row;
    row.name = "entity";
    row.graph = std::move(g);
    row.delta_max = 4;
    row.build_ns = build_ns;
    rows.push_back(std::move(row));
  }
  {
    Rng rng(9002);
    const auto start = Clock::now();
    Graph g = gen::ErdosRenyi(static_cast<int>(target), 0.5 / target, rng);
    const double build_ns = ElapsedNs(start);
    std::printf("gnp-0.5/n: built n=%d m=%d in %.0f ms\n", g.NumVertices(),
                g.NumEdges(), build_ns * 1e-6);
    ScaleRow row;
    row.name = "gnp-0.5/n";
    row.graph = std::move(g);
    row.delta_max = 32;
    row.build_ns = build_ns;
    rows.push_back(std::move(row));
  }

  bool all_ok = true;
  for (ScaleRow& row : rows) {
    const Graph& g = row.graph;
    const double truth = CountConnectedComponents(g);

    const auto family_start = Clock::now();
    ExtensionFamily family(g);
    const double family_ns = ElapsedNs(family_start);

    PrivateCcOptions options;
    options.delta_max = row.delta_max;
    Rng rng(9100);
    const auto release_start = Clock::now();
    const auto release =
        PrivateConnectedComponents(family, epsilon, rng, options);
    const double release_ns = ElapsedNs(release_start);
    if (!release.ok()) {
      std::fprintf(stderr, "%s: %s\n", row.name.c_str(),
                   release.status().ToString().c_str());
      all_ok = false;
      continue;
    }
    const double abs_err =
        release->estimate > truth ? release->estimate - truth
                                  : truth - release->estimate;
    const double memory_bytes = static_cast<double>(g.MemoryBytes());

    table.Cell(row.name)
        .Cell(g.NumVertices())
        .Cell(g.NumEdges())
        .Cell(memory_bytes / (1024.0 * 1024.0), 1)
        .Cell(row.build_ns * 1e-6, 1)
        .Cell(family_ns * 1e-6, 1)
        .Cell(release_ns * 1e-6, 1)
        .Cell(abs_err, 1);
    table.EndRow();

    BenchRecord record;
    record.name = "Scale/" + row.name + "/release";
    record.real_ns = release_ns;
    record.cpu_ns = release_ns;
    record.iterations = 1;
    record.counters.emplace_back("vertices", g.NumVertices());
    record.counters.emplace_back("edges", g.NumEdges());
    record.counters.emplace_back("graph_memory_bytes", memory_bytes);
    record.counters.emplace_back("graph_build_ns", row.build_ns);
    record.counters.emplace_back("family_build_ns", family_ns);
    record.counters.emplace_back("true_cc", truth);
    record.counters.emplace_back("estimate", release->estimate);
    record.counters.emplace_back("abs_error", abs_err);
    record.counters.emplace_back("lp_evaluations",
                                 family.stats().lp_evaluations);
    record.counters.emplace_back("fast_certificates",
                                 family.stats().fast_certificates);
    report.Add(std::move(record));
  }

  table.Print(std::cout);

  const std::string path = BenchJsonPath("scale");
  const Status written = report.WriteFile(path);
  if (!written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %s (%d records)\n", path.c_str(),
              report.num_records());
  return all_ok ? 0 : 1;
}

// S1 — large-graph scale bench: end-to-end node-private connected-component
// releases on multi-million-vertex sparse graphs, the regime the CSR graph
// core exists for. Workloads are chosen so components stay small (the
// serving scenario: huge populations, bounded local structure), with
// data-independent Δ grids justified by public degree caps:
//
//   entity       union of record-cliques of size <= 4 (entity resolution);
//                public cap: record multiplicity 4 => delta_max = 4.
//   gnp-0.5/n    subcritical Erdős–Rényi, components O(log n);
//                delta_max = 32, a public constant.
//
// Reports wall-clock ns for graph construction, ExtensionFamily
// construction (component decomposition via CSR Induce), and the private
// release itself, plus Graph::MemoryBytes() and peak RSS, through both the
// console table and the nodedp-bench-v1 JSON artifact (BENCH_scale.json).
//
// The mmap workload (Scale/mmap/*) measures the zero-copy serving path:
// the entity graph is written as an NDPG v2 file, then served by two
// child processes — one Graph::FromMmap + approx-tier queries, one full
// heap load (ReadGraphV2File) + the same queries. One child per
// measurement because VmHWM (peak RSS) never decreases within a process;
// in-process before/after deltas would report whichever workload ran
// first. At scale the mapped child's peak RSS sits far below the heap
// child's (it pages in only what the truncated BFS touches);
// NODEDP_SCALE_STRICT=1 gates mapped_rss * 2 <= heap_rss (the nightly
// >=10M-vertex run sets it; smoke sizes stay telemetry-only, since
// process baseline RSS dominates tiny graphs).
//
// NODEDP_SCALE_VERTICES overrides the target vertex count (default
// 1,200,000; CI smoke runs use a smaller value).

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "core/extension_family.h"
#include "core/private_cc.h"
#include "core/sublinear_cc.h"
#include "eval/json_report.h"
#include "eval/table.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/ndpg_v2.h"
#include "util/random.h"

namespace {

using namespace nodedp;
using Clock = std::chrono::steady_clock;

double ElapsedNs(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start)
      .count();
}

long long TargetVertices() {
  const char* env = std::getenv("NODEDP_SCALE_VERTICES");
  if (env != nullptr) {
    const long long parsed = std::atoll(env);
    if (parsed >= 1000) return parsed;
  }
  return 1200000;
}

struct ScaleRow {
  std::string name;
  Graph graph;
  int delta_max = 0;
  double build_ns = 0.0;
};

// --- mmap workload helpers --------------------------------------------------

// Child mode: load the v2 file (`mmap` zero-copy or `heap` full read), run
// a fixed approx-tier query workload, report peak RSS and timings on one
// parseable stdout line.
int RunMmapChild(const std::string& path, const std::string& mode) {
  const auto load_start = Clock::now();
  Result<Graph> loaded =
      mode == "mmap" ? Graph::FromMmap(path) : ReadGraphV2File(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "mmap-child(%s): %s\n", mode.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  const double load_ns = ElapsedNs(load_start);
  Rng rng(4242);
  PrivateSublinearCcOptions options;
  options.delta_max = 4;  // the entity workload's public record cap
  double sum = 0.0;
  const auto query_start = Clock::now();
  for (int q = 0; q < 4; ++q) {
    const auto release = PrivateSublinearCc(*loaded, 1.0, rng, options);
    if (!release.ok()) {
      std::fprintf(stderr, "mmap-child(%s): %s\n", mode.c_str(),
                   release.status().ToString().c_str());
      return 1;
    }
    sum += release->estimate;
  }
  const double query_ns = ElapsedNs(query_start);
  std::printf("child_ok mode=%s rss=%zu load_ns=%.0f query_ns=%.0f "
              "sum=%.3f\n",
              mode.c_str(), PeakRssBytes(), load_ns, query_ns, sum);
  return 0;
}

std::string SelfExePath() {
  char buffer[4096];
  const ssize_t len =
      ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
  if (len <= 0) return "";
  buffer[len] = '\0';
  return buffer;
}

struct ChildResult {
  bool ok = false;
  double rss = 0.0;
  double load_ns = 0.0;
  double query_ns = 0.0;
};

ChildResult RunChild(const std::string& exe, const std::string& path,
                     const char* mode) {
  ChildResult result;
  const std::string command =
      "'" + exe + "' --mmap-child '" + path + "' " + mode;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char line[512];
  while (std::fgets(line, sizeof(line), pipe) != nullptr) {
    unsigned long long rss = 0;
    double load_ns = 0.0;
    double query_ns = 0.0;
    if (std::sscanf(line,
                    "child_ok mode=%*s rss=%llu load_ns=%lf query_ns=%lf",
                    &rss, &load_ns, &query_ns) == 3) {
      result.rss = static_cast<double>(rss);
      result.load_ns = load_ns;
      result.query_ns = query_ns;
      result.ok = true;
    }
  }
  if (pclose(pipe) != 0) result.ok = false;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 4 && std::string(argv[1]) == "--mmap-child") {
    return RunMmapChild(argv[2], argv[3]);
  }
  const long long target = TargetVertices();
  std::printf("S1: scale bench, target vertices = %lld, epsilon = 1\n\n",
              target);
  const double epsilon = 1.0;

  JsonReport report("scale");
  report.SetContext("target_vertices", std::to_string(target));

  Table table({"workload", "n", "m", "graph MB", "build ms", "family ms",
               "release ms", "|err|"});

  std::vector<ScaleRow> rows;
  {
    // Mean records per entity is 2.5, so target/2.5 entities hits the
    // vertex target in expectation.
    Rng rng(9001);
    const auto start = Clock::now();
    Graph g = gen::RandomEntityGraph(static_cast<int>(target * 2 / 5), 4,
                                     rng);
    const double build_ns = ElapsedNs(start);
    std::printf("entity: built n=%d m=%d in %.0f ms\n", g.NumVertices(),
                g.NumEdges(), build_ns * 1e-6);
    ScaleRow row;
    row.name = "entity";
    row.graph = std::move(g);
    row.delta_max = 4;
    row.build_ns = build_ns;
    rows.push_back(std::move(row));
  }
  {
    Rng rng(9002);
    const auto start = Clock::now();
    Graph g = gen::ErdosRenyi(static_cast<int>(target), 0.5 / target, rng);
    const double build_ns = ElapsedNs(start);
    std::printf("gnp-0.5/n: built n=%d m=%d in %.0f ms\n", g.NumVertices(),
                g.NumEdges(), build_ns * 1e-6);
    ScaleRow row;
    row.name = "gnp-0.5/n";
    row.graph = std::move(g);
    row.delta_max = 32;
    row.build_ns = build_ns;
    rows.push_back(std::move(row));
  }

  bool all_ok = true;
  for (ScaleRow& row : rows) {
    const Graph& g = row.graph;
    const double truth = CountConnectedComponents(g);

    const auto family_start = Clock::now();
    ExtensionFamily family(g);
    const double family_ns = ElapsedNs(family_start);

    PrivateCcOptions options;
    options.delta_max = row.delta_max;
    Rng rng(9100);
    const auto release_start = Clock::now();
    const auto release =
        PrivateConnectedComponents(family, epsilon, rng, options);
    const double release_ns = ElapsedNs(release_start);
    if (!release.ok()) {
      std::fprintf(stderr, "%s: %s\n", row.name.c_str(),
                   release.status().ToString().c_str());
      all_ok = false;
      continue;
    }
    const double abs_err =
        release->estimate > truth ? release->estimate - truth
                                  : truth - release->estimate;
    const double memory_bytes = static_cast<double>(g.MemoryBytes());

    table.Cell(row.name)
        .Cell(g.NumVertices())
        .Cell(g.NumEdges())
        .Cell(memory_bytes / (1024.0 * 1024.0), 1)
        .Cell(row.build_ns * 1e-6, 1)
        .Cell(family_ns * 1e-6, 1)
        .Cell(release_ns * 1e-6, 1)
        .Cell(abs_err, 1);
    table.EndRow();

    BenchRecord record;
    record.name = "Scale/" + row.name + "/release";
    record.real_ns = release_ns;
    record.cpu_ns = release_ns;
    record.iterations = 1;
    record.counters.emplace_back("vertices", g.NumVertices());
    record.counters.emplace_back("edges", g.NumEdges());
    record.counters.emplace_back("graph_memory_bytes", memory_bytes);
    record.counters.emplace_back("graph_build_ns", row.build_ns);
    record.counters.emplace_back("family_build_ns", family_ns);
    record.counters.emplace_back("true_cc", truth);
    record.counters.emplace_back("estimate", release->estimate);
    record.counters.emplace_back("abs_error", abs_err);
    record.counters.emplace_back("lp_evaluations",
                                 family.stats().lp_evaluations);
    record.counters.emplace_back("fast_certificates",
                                 family.stats().fast_certificates);
    // The process-wide high-water mark so far (grows monotonically across
    // rows; per-workload peaks come from the mmap child processes below).
    if (PeakRssBytes() > 0) {
      record.counters.emplace_back("peak_rss_bytes",
                                   static_cast<double>(PeakRssBytes()));
    }
    report.Add(std::move(record));
  }

  // --- mmap workload: zero-copy serving vs heap load ------------------------
  {
    const std::string exe = SelfExePath();
    const Graph& g = rows[0].graph;  // the entity workload
    const char* tmpdir = std::getenv("TMPDIR");
    const std::string v2_path =
        std::string(tmpdir != nullptr && tmpdir[0] != '\0' ? tmpdir : "/tmp") +
        "/nodedp_bench_scale_" + std::to_string(getpid()) + ".ndpg2";
    const Status written = WriteGraphV2File(g, v2_path);
    if (exe.empty() || !written.ok()) {
      std::fprintf(stderr, "mmap workload skipped: %s\n",
                   exe.empty() ? "cannot resolve /proc/self/exe"
                               : written.ToString().c_str());
      all_ok = false;
    } else {
      const ChildResult mapped = RunChild(exe, v2_path, "mmap");
      const ChildResult heap = RunChild(exe, v2_path, "heap");
      if (!mapped.ok || !heap.ok) {
        std::fprintf(stderr, "mmap workload failed (mapped ok=%d heap ok=%d)\n",
                     mapped.ok ? 1 : 0, heap.ok ? 1 : 0);
        all_ok = false;
      } else {
        const double rss_ratio =
            mapped.rss > 0 ? heap.rss / mapped.rss : 0.0;
        std::printf(
            "\nmmap workload (n=%d m=%d file=%.1f MB):\n"
            "  mapped: load %.1f ms, queries %.1f ms, peak RSS %.1f MB\n"
            "  heap:   load %.1f ms, queries %.1f ms, peak RSS %.1f MB\n"
            "  heap/mapped peak-RSS ratio: %.2f\n",
            g.NumVertices(), g.NumEdges(),
            static_cast<double>(ndpgv2::FileSizeBytes(ndpgv2::CanonicalHeader(
                g.NumVertices(), g.NumEdges()))) /
                (1024.0 * 1024.0),
            mapped.load_ns * 1e-6, mapped.query_ns * 1e-6,
            mapped.rss / (1024.0 * 1024.0), heap.load_ns * 1e-6,
            heap.query_ns * 1e-6, heap.rss / (1024.0 * 1024.0), rss_ratio);

        BenchRecord mapped_record;
        mapped_record.name = "Scale/mmap/serve_mapped";
        mapped_record.real_ns = mapped.load_ns;
        mapped_record.cpu_ns = mapped.load_ns;
        mapped_record.iterations = 1;
        mapped_record.counters.emplace_back("vertices", g.NumVertices());
        mapped_record.counters.emplace_back("edges", g.NumEdges());
        mapped_record.counters.emplace_back("peak_rss_bytes", mapped.rss);
        mapped_record.counters.emplace_back("query_ns", mapped.query_ns);
        mapped_record.counters.emplace_back("rss_ratio", rss_ratio);
        report.Add(std::move(mapped_record));

        BenchRecord heap_record;
        heap_record.name = "Scale/mmap/serve_heap";
        heap_record.real_ns = heap.load_ns;
        heap_record.cpu_ns = heap.load_ns;
        heap_record.iterations = 1;
        heap_record.counters.emplace_back("vertices", g.NumVertices());
        heap_record.counters.emplace_back("edges", g.NumEdges());
        heap_record.counters.emplace_back("peak_rss_bytes", heap.rss);
        heap_record.counters.emplace_back("query_ns", heap.query_ns);
        report.Add(std::move(heap_record));

        // The acceptance gate for the nightly >=10M run: a mapped server's
        // resident set must sit materially below a heap load's. Opt-in,
        // because at smoke sizes the process baseline dominates both.
        const char* strict = std::getenv("NODEDP_SCALE_STRICT");
        if (strict != nullptr && strict[0] == '1' &&
            !(mapped.rss * 2.0 <= heap.rss)) {
          std::fprintf(stderr,
                       "STRICT: mapped peak RSS %.1f MB not materially below "
                       "heap %.1f MB (need <= half)\n",
                       mapped.rss / (1024.0 * 1024.0),
                       heap.rss / (1024.0 * 1024.0));
          all_ok = false;
        }
      }
    }
    std::remove(v2_path.c_str());
  }

  table.Print(std::cout);

  const std::string path = BenchJsonPath("scale");
  const Status written = report.WriteFile(path);
  if (!written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %s (%d records)\n", path.c_str(),
              report.num_records());
  return all_ok ? 0 : 1;
}

#!/usr/bin/env python3
"""Unit check for bench/compare_bench.py — pins the direction convention.

real_ns is a time (lower is better): growth past the threshold regresses.
`_speedup` counters are ratios (higher is better): SHRINKAGE past the
threshold regresses, and growth never does. This script exists because the
inverted direction is exactly the kind of bug a green CI run hides — a
gate that flags improvements and waves regressions through still exits 0
on a quiet day. Run: python3 bench/test_compare_bench.py (exits non-zero
on the first failed case). CI runs it in the bench-regression job.
"""

import json
import os
import subprocess
import sys
import tempfile

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "compare_bench.py")


def write_report(path, records):
    doc = {
        "schema": "nodedp-bench-v1",
        "suite": "unittest",
        "benchmarks": records,
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f)


def record(name, real_ns, counters=None):
    rec = {"name": name, "real_ns": real_ns, "cpu_ns": real_ns,
           "iterations": 1}
    if counters:
        rec["counters"] = counters
    return rec


def run_compare(base, cur, *flags):
    proc = subprocess.run(
        [sys.executable, SCRIPT, base, cur, *flags],
        capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


failures = []


def check(label, condition, output=""):
    if condition:
        print(f"  ok: {label}")
    else:
        print(f"  FAIL: {label}")
        if output:
            print("  ---- compare_bench output ----")
            print("  " + "\n  ".join(output.splitlines()))
        failures.append(label)


def main():
    with tempfile.TemporaryDirectory() as tmp:
        base = os.path.join(tmp, "base.json")
        cur = os.path.join(tmp, "cur.json")

        print("case: real_ns growth past threshold fails --strict")
        write_report(base, [record("A/time", 1000)])
        write_report(cur, [record("A/time", 2000)])
        code, out = run_compare(base, cur, "--strict", "--threshold", "1.5")
        check("exit non-zero", code != 0, out)
        check("flagged as regression", "REGRESSION" in out, out)

        print("case: real_ns shrinkage (improvement) passes --strict")
        write_report(cur, [record("A/time", 500)])
        code, out = run_compare(base, cur, "--strict", "--threshold", "1.5")
        check("exit zero", code == 0, out)

        print("case: _speedup shrinkage past threshold fails --strict")
        write_report(base, [record("A/time", 1000,
                                   {"sweep_speedup": 6.0})])
        write_report(cur, [record("A/time", 1000,
                                  {"sweep_speedup": 2.0})])
        code, out = run_compare(base, cur, "--strict", "--threshold", "1.5")
        check("exit non-zero", code != 0, out)
        check("names the counter", "sweep_speedup" in out, out)

        print("case: _speedup growth (improvement) passes --strict")
        write_report(cur, [record("A/time", 1000,
                                  {"sweep_speedup": 18.0})])
        code, out = run_compare(base, cur, "--strict", "--threshold", "1.5")
        check("exit zero (growth is not a regression)", code == 0, out)

        print("case: non-speedup counters are not gated")
        write_report(base, [record("A/time", 1000, {"p99_ns": 10.0})])
        write_report(cur, [record("A/time", 1000, {"p99_ns": 1e9})])
        code, out = run_compare(base, cur, "--strict", "--threshold", "1.5")
        check("exit zero", code == 0, out)

        print("case: new record without baseline is skipped")
        write_report(base, [record("A/time", 1000)])
        write_report(cur, [record("A/time", 1000), record("A/fresh", 9999)])
        code, out = run_compare(base, cur, "--strict", "--threshold", "1.5")
        check("exit zero", code == 0, out)
        check("reported as new", "new record" in out, out)

        print("case: duplicate record name is rejected")
        write_report(base, [record("A/time", 1000), record("A/time", 2000)])
        write_report(cur, [record("A/time", 1000)])
        code, out = run_compare(base, cur)
        check("exit non-zero", code != 0, out)
        check("explains duplicate", "duplicate record" in out, out)

        print("case: missing baseline file exits zero")
        code, out = run_compare(os.path.join(tmp, "nope.json"), cur)
        check("exit zero", code == 0, out)

    if failures:
        print(f"\n{len(failures)} check(s) FAILED")
        return 1
    print("\nall compare_bench direction-convention checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

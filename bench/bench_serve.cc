// S2 — release-server bench: the serving-path numbers behind docs/SERVING.md.
//
// Measures, on an entity-resolution workload (record cliques of size <= 4,
// public cap delta_max = 4):
//
//   cold_load_binary   streaming NDPG ingestion straight into CSR
//   cold_load_text     the text edge-list reader on the same graph
//   family_warm        ExtensionFamily construction + full-grid warm-up
//                      (the expensive, ε-independent part of a `load`)
//   warm_query         one ReleaseCc against the warmed server
//   sweep_warm         K-epsilon sweep on the warmed family (one server call)
//   sweep_oneshot      K independent one-shot PrivateConnectedComponents
//                      calls, each rebuilding the family — what serving
//                      would cost without the family cache
//
// The headline counter is sweep_speedup = sweep_oneshot / sweep_warm; the
// acceptance bar for the serve subsystem is >= 3x at K = 8.
//
// Emits BENCH_serve.json (schema nodedp-bench-v1, see bench/README.md).
// NODEDP_SERVE_VERTICES overrides the target vertex count (default 400,000;
// CI smoke uses a smaller value).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/private_cc.h"
#include "eval/json_report.h"
#include "eval/table.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "serve/release_server.h"
#include "util/random.h"

namespace {

using namespace nodedp;
using Clock = std::chrono::steady_clock;

double ElapsedNs(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start)
      .count();
}

long long TargetVertices() {
  const char* env = std::getenv("NODEDP_SERVE_VERTICES");
  if (env != nullptr) {
    const long long parsed = std::atoll(env);
    if (parsed >= 1000) return parsed;
  }
  return 400000;
}

constexpr int kSweepEpsilons = 8;
constexpr int kWarmQueries = 16;
constexpr int kDeltaMax = 4;  // public record-multiplicity cap

}  // namespace

int main() {
  const long long target = TargetVertices();
  std::printf("S2: serve bench, target vertices = %lld, sweep K = %d\n\n",
              target, kSweepEpsilons);

  JsonReport report("serve");
  report.SetContext("target_vertices", std::to_string(target));
  report.SetContext("sweep_epsilons", std::to_string(kSweepEpsilons));

  Table table({"stage", "ms", "notes"});
  bool all_ok = true;

  // Workload: entity-resolution clique unions (mean 2.5 records/entity).
  Rng gen_rng(42);
  const Graph graph =
      gen::RandomEntityGraph(static_cast<int>(target * 2 / 5), 4, gen_rng);
  std::printf("workload: n=%d m=%d\n", graph.NumVertices(), graph.NumEdges());

  const std::string binary_path = "/tmp/nodedp_bench_serve.ndpg";
  const std::string text_path = "/tmp/nodedp_bench_serve.txt";
  {
    const Status wb = WriteGraphBinaryFile(graph, binary_path);
    const Status wt = WriteEdgeListFile(graph, text_path);
    if (!wb.ok() || !wt.ok()) {
      std::fprintf(stderr, "failed to stage graph files\n");
      return 1;
    }
  }

  auto add_record = [&report](const std::string& name, double ns,
                              std::vector<std::pair<std::string, double>>
                                  counters) {
    BenchRecord record;
    record.name = "Serve/" + name;
    record.real_ns = ns;
    record.cpu_ns = ns;
    record.iterations = 1;
    record.counters = std::move(counters);
    report.Add(std::move(record));
  };

  // --- cold load: binary streaming vs text parsing -------------------------
  double binary_ns = 0.0;
  {
    const auto start = Clock::now();
    const Result<Graph> loaded = ReadGraphBinaryFile(binary_path);
    binary_ns = ElapsedNs(start);
    if (!loaded.ok() || loaded->NumEdges() != graph.NumEdges()) {
      std::fprintf(stderr, "binary load failed\n");
      return 1;
    }
    table.Cell("cold_load_binary")
        .Cell(binary_ns * 1e-6, 1)
        .Cell("NDPG -> CSR");
    table.EndRow();
    add_record("cold_load_binary", binary_ns,
               {{"vertices", graph.NumVertices()},
                {"edges", graph.NumEdges()}});
  }
  {
    const auto start = Clock::now();
    const Result<Graph> loaded = ReadEdgeListFile(text_path);
    const double text_ns = ElapsedNs(start);
    if (!loaded.ok() || loaded->NumEdges() != graph.NumEdges()) {
      std::fprintf(stderr, "text load failed\n");
      return 1;
    }
    table.Cell("cold_load_text").Cell(text_ns * 1e-6, 1).Cell("edge list");
    table.EndRow();
    add_record("cold_load_text", text_ns,
               {{"vertices", graph.NumVertices()},
                {"edges", graph.NumEdges()},
                {"binary_speedup", text_ns / binary_ns}});
  }

  // --- server load (family construction + warm) ----------------------------
  ReleaseServer server(7);
  ServeGraphConfig config;
  config.total_epsilon = 1e9;  // bench measures perf, not refusals
  config.release.delta_max = kDeltaMax;
  double warm_ns = 0.0;
  {
    const auto start = Clock::now();
    const Status loaded = server.LoadFromFile("g", binary_path, config);
    warm_ns = ElapsedNs(start);
    if (!loaded.ok()) {
      std::fprintf(stderr, "server load failed: %s\n",
                   loaded.ToString().c_str());
      return 1;
    }
    table.Cell("family_warm").Cell(warm_ns * 1e-6, 1).Cell("load + grid warm");
    table.EndRow();
    add_record("family_warm", warm_ns, {});
  }

  // --- warm queries ---------------------------------------------------------
  {
    const auto start = Clock::now();
    for (int i = 0; i < kWarmQueries; ++i) {
      const auto release = server.ReleaseCc("g", 1.0);
      if (!release.ok()) {
        std::fprintf(stderr, "warm query failed: %s\n",
                     release.status().ToString().c_str());
        return 1;
      }
    }
    const double ns = ElapsedNs(start);
    table.Cell("warm_query")
        .Cell(ns * 1e-6 / kWarmQueries, 3)
        .Cell("per ReleaseCc, warmed family");
    table.EndRow();
    add_record("warm_query", ns / kWarmQueries,
               {{"queries", kWarmQueries}});
  }

  // --- the acceptance comparison: warm sweep vs one-shot releases ----------
  std::vector<double> epsilons;
  for (int i = 0; i < kSweepEpsilons; ++i) {
    epsilons.push_back(0.25 * (i + 1));  // 0.25 .. 2.0
  }

  double sweep_ns = 0.0;
  {
    const auto start = Clock::now();
    const auto releases = server.SweepCc("g", epsilons);
    sweep_ns = ElapsedNs(start);
    if (!releases.ok() ||
        static_cast<int>(releases->size()) != kSweepEpsilons) {
      std::fprintf(stderr, "sweep failed\n");
      return 1;
    }
    table.Cell("sweep_warm").Cell(sweep_ns * 1e-6, 1).Cell("8 eps, one family");
    table.EndRow();
  }

  double oneshot_ns = 0.0;
  {
    PrivateCcOptions options;
    options.delta_max = kDeltaMax;
    Rng rng(7);
    const auto start = Clock::now();
    for (double epsilon : epsilons) {
      // The pre-family serving shape: every call rebuilds the extension
      // family from the graph (the one-shot overload).
      const auto release =
          PrivateConnectedComponents(graph, epsilon, rng, options);
      if (!release.ok()) {
        std::fprintf(stderr, "one-shot release failed: %s\n",
                     release.status().ToString().c_str());
        return 1;
      }
    }
    oneshot_ns = ElapsedNs(start);
    table.Cell("sweep_oneshot")
        .Cell(oneshot_ns * 1e-6, 1)
        .Cell("8 independent one-shot calls");
    table.EndRow();
  }

  const double speedup = oneshot_ns / sweep_ns;
  add_record("sweep_warm", sweep_ns,
             {{"epsilons", kSweepEpsilons},
              {"oneshot_ns", oneshot_ns},
              {"sweep_speedup", speedup}});
  add_record("sweep_oneshot", oneshot_ns, {{"epsilons", kSweepEpsilons}});
  table.Cell("speedup").Cell(speedup, 2).Cell("oneshot / warm (target >= 3)");
  table.EndRow();
  if (speedup < 3.0) {
    // Report loudly but do not fail the run: CI smoke boxes are noisy. The
    // acceptance measurement is the full-size local run.
    std::fprintf(stderr,
                 "WARNING: warm-sweep speedup %.2fx below the 3x target\n",
                 speedup);
    all_ok = all_ok && std::getenv("NODEDP_SERVE_STRICT") == nullptr;
  }

  table.Print(std::cout);

  std::remove(binary_path.c_str());
  std::remove(text_path.c_str());

  const std::string path = BenchJsonPath("serve");
  const Status written = report.WriteFile(path);
  if (!written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %s (%d records)\n", path.c_str(), report.num_records());
  return all_ok ? 0 : 1;
}

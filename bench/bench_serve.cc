// S2 — release-server bench: the serving-path numbers behind docs/SERVING.md.
//
// Measures, on an entity-resolution workload (record cliques of size <= 4,
// public cap delta_max = 4):
//
//   cold_load_binary   streaming NDPG ingestion straight into CSR
//   cold_load_text     the text edge-list reader on the same graph
//   family_warm        ExtensionFamily construction + full-grid warm-up
//                      (the expensive, ε-independent part of a `load`)
//   family_construct   sharded ExtensionFamily construction on a
//                      multi-component workload, at 4 threads vs 1
//   warm_overlap       pipelined warm (induction overlapped with grid
//                      cells) vs the phased induce-then-warm sequence
//   warm_skew          cost-ordered (LPT) vs index-ordered warm on a
//                      skewed mix: one giant component at the top of the
//                      vertex range plus many small blocks, at 4 threads
//   warm_query         one ReleaseCc against the warmed server
//   tier_approx        one approx-tier release (sampled sublinear, no
//                      family) on a cold-loaded graph, vs the first exact
//                      query's family-build cost (tier_exact_cold)
//   sweep_warm         K-epsilon sweep on the warmed family (one server call)
//   sweep_oneshot      K independent one-shot PrivateConnectedComponents
//                      calls, each rebuilding the family — what serving
//                      would cost without the family cache
//
// Acceptance counters: sweep_speedup = sweep_oneshot / sweep_warm (bar:
// >= 3x at K = 8), construct_speedup = construct at 1 thread / 4 threads
// (bar: >= 2x — needs a machine with >= 4 cores to be meaningful; CI
// smoke boxes are narrower), tiered_speedup = tier_exact_cold /
// tier_approx (bar: >= 5x), and skew_speedup = index-ordered warm /
// cost-ordered warm on the skewed workload (bar: >= 1.3x at 4 threads).
// NODEDP_SERVE_STRICT makes any below-target counter fail the run.
//
// Emits BENCH_serve.json (schema nodedp-bench-v1, see bench/README.md).
// NODEDP_SERVE_VERTICES overrides the target vertex count (default 400,000;
// CI smoke uses a smaller value).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include <mutex>
#include <thread>

#include "core/extension_family.h"
#include "core/private_cc.h"
#include "eval/json_report.h"
#include "eval/table.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "serve/release_server.h"
#include "serve/socket_client.h"
#include "serve/socket_server.h"
#include "util/parallel.h"
#include "util/random.h"

namespace {

using namespace nodedp;
using Clock = std::chrono::steady_clock;

double ElapsedNs(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              start)
      .count();
}

long long TargetVertices() {
  const char* env = std::getenv("NODEDP_SERVE_VERTICES");
  if (env != nullptr) {
    const long long parsed = std::atoll(env);
    if (parsed >= 1000) return parsed;
  }
  return 400000;
}

constexpr int kSweepEpsilons = 8;
constexpr int kWarmQueries = 16;
constexpr int kDeltaMax = 4;  // public record-multiplicity cap

}  // namespace

int main() {
  const long long target = TargetVertices();
  std::printf("S2: serve bench, target vertices = %lld, sweep K = %d\n\n",
              target, kSweepEpsilons);

  JsonReport report("serve");
  report.SetContext("target_vertices", std::to_string(target));
  report.SetContext("sweep_epsilons", std::to_string(kSweepEpsilons));

  Table table({"stage", "ms", "notes"});
  bool all_ok = true;

  // Workload: entity-resolution clique unions (mean 2.5 records/entity).
  Rng gen_rng(42);
  const Graph graph =
      gen::RandomEntityGraph(static_cast<int>(target * 2 / 5), 4, gen_rng);
  std::printf("workload: n=%d m=%d\n", graph.NumVertices(), graph.NumEdges());

  const std::string binary_path = "/tmp/nodedp_bench_serve.ndpg";
  const std::string text_path = "/tmp/nodedp_bench_serve.txt";
  {
    const Status wb = WriteGraphBinaryFile(graph, binary_path);
    const Status wt = WriteEdgeListFile(graph, text_path);
    if (!wb.ok() || !wt.ok()) {
      std::fprintf(stderr, "failed to stage graph files\n");
      return 1;
    }
  }

  auto add_record = [&report](const std::string& name, double ns,
                              std::vector<std::pair<std::string, double>>
                                  counters) {
    BenchRecord record;
    record.name = "Serve/" + name;
    record.real_ns = ns;
    record.cpu_ns = ns;
    record.iterations = 1;
    record.counters = std::move(counters);
    report.Add(std::move(record));
  };

  // --- cold load: binary streaming vs text parsing -------------------------
  double binary_ns = 0.0;
  {
    const auto start = Clock::now();
    const Result<Graph> loaded = ReadGraphBinaryFile(binary_path);
    binary_ns = ElapsedNs(start);
    if (!loaded.ok() || loaded->NumEdges() != graph.NumEdges()) {
      std::fprintf(stderr, "binary load failed\n");
      return 1;
    }
    table.Cell("cold_load_binary")
        .Cell(binary_ns * 1e-6, 1)
        .Cell("NDPG -> CSR");
    table.EndRow();
    add_record("cold_load_binary", binary_ns,
               {{"vertices", graph.NumVertices()},
                {"edges", graph.NumEdges()}});
  }
  {
    const auto start = Clock::now();
    const Result<Graph> loaded = ReadEdgeListFile(text_path);
    const double text_ns = ElapsedNs(start);
    if (!loaded.ok() || loaded->NumEdges() != graph.NumEdges()) {
      std::fprintf(stderr, "text load failed\n");
      return 1;
    }
    table.Cell("cold_load_text").Cell(text_ns * 1e-6, 1).Cell("edge list");
    table.EndRow();
    add_record("cold_load_text", text_ns,
               {{"vertices", graph.NumVertices()},
                {"edges", graph.NumEdges()},
                {"binary_speedup", text_ns / binary_ns}});
  }

  // --- server load (family construction + warm) ----------------------------
  ReleaseServer server(7);
  ServeGraphConfig config;
  config.total_epsilon = 1e9;  // bench measures perf, not refusals
  config.release.delta_max = kDeltaMax;
  double warm_ns = 0.0;
  {
    const auto start = Clock::now();
    const Status loaded = server.LoadFromFile("g", binary_path, config);
    warm_ns = ElapsedNs(start);
    if (!loaded.ok()) {
      std::fprintf(stderr, "server load failed: %s\n",
                   loaded.ToString().c_str());
      return 1;
    }
    table.Cell("family_warm").Cell(warm_ns * 1e-6, 1).Cell("load + grid warm");
    table.EndRow();
    add_record("family_warm", warm_ns, {});
  }

  // --- warm queries ---------------------------------------------------------
  double warm_query_ns = 0.0;
  {
    const auto start = Clock::now();
    for (int i = 0; i < kWarmQueries; ++i) {
      const auto release = server.ReleaseCc("g", 1.0);
      if (!release.ok()) {
        std::fprintf(stderr, "warm query failed: %s\n",
                     release.status().ToString().c_str());
        return 1;
      }
    }
    const double ns = ElapsedNs(start);
    warm_query_ns = ns / kWarmQueries;
    table.Cell("warm_query")
        .Cell(warm_query_ns * 1e-6, 3)
        .Cell("per ReleaseCc, warmed family");
    table.EndRow();
    add_record("warm_query", warm_query_ns, {{"queries", kWarmQueries}});
  }

  // --- tiered serving: approx tier vs cold exact tier ----------------------
  {
    // The tiered-serving acceptance measurement. A second registration of
    // the same graph (O(1): copies share the CSR backing), loaded with
    // prewarm off — the load_mmap serving shape, where the graph is
    // available immediately and no family exists yet. The approx tier
    // (sampled sublinear estimator) answers without ever building one;
    // the first exact query then pays the full family build + warm. The
    // honest comparison for repeated queries is exact_warm_ns (reported
    // alongside); tiered_speedup measures what the approx tier buys on a
    // graph nobody has warmed.
    ServeGraphConfig cold_config = config;
    cold_config.prewarm = false;
    const Status loaded = server.Load("tiered", graph, cold_config);
    if (!loaded.ok()) {
      std::fprintf(stderr, "tiered load failed: %s\n",
                   loaded.ToString().c_str());
      return 1;
    }
    constexpr int kApproxQueries = 8;
    const auto approx_start = Clock::now();
    for (int q = 0; q < kApproxQueries; ++q) {
      const auto release = server.ReleaseCcApprox("tiered", 0.5);
      if (!release.ok()) {
        std::fprintf(stderr, "approx query failed: %s\n",
                     release.status().ToString().c_str());
        return 1;
      }
    }
    const double approx_ns = ElapsedNs(approx_start) / kApproxQueries;

    const auto exact_start = Clock::now();
    const auto exact = server.ReleaseCc("tiered", 0.5);
    const double exact_cold_ns = ElapsedNs(exact_start);
    if (!exact.ok()) {
      std::fprintf(stderr, "cold exact query failed: %s\n",
                   exact.status().ToString().c_str());
      return 1;
    }

    const double tiered_speedup = exact_cold_ns / approx_ns;
    table.Cell("tier_approx")
        .Cell(approx_ns * 1e-6, 3)
        .Cell("per approx release, no family");
    table.EndRow();
    table.Cell("tier_exact_cold")
        .Cell(exact_cold_ns * 1e-6, 1)
        .Cell("first exact query: family build + warm + release");
    table.EndRow();
    table.Cell("tiered_speedup")
        .Cell(tiered_speedup, 2)
        .Cell("exact_cold / approx (target >= 5)");
    table.EndRow();
    add_record("tier_approx", approx_ns,
               {{"queries", kApproxQueries},
                {"exact_cold_ns", exact_cold_ns},
                {"exact_warm_ns", warm_query_ns},
                {"tiered_speedup", tiered_speedup}});
    if (tiered_speedup < 5.0) {
      std::fprintf(stderr,
                   "WARNING: tiered speedup %.2fx below the 5x target\n",
                   tiered_speedup);
      all_ok = all_ok && std::getenv("NODEDP_SERVE_STRICT") == nullptr;
    }
  }

  // --- socket_hammer: concurrent clients over the TCP front end ------------
  {
    // connections x queries against the warmed server through a real
    // socket: measures the full request path (framing, dispatch, release,
    // reply) under concurrency, not just the mechanism. Per-request
    // latencies aggregate to p50/p99 — tail latency is what a slow client
    // of a multi-tenant release server actually experiences.
    constexpr int kConnections = 8;
    constexpr int kQueriesPerConn = 32;
    SocketServer socket_server(&server);
    const Status started = socket_server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "socket server failed: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    std::vector<double> latencies_ns;
    latencies_ns.reserve(kConnections * kQueriesPerConn);
    std::mutex latencies_mu;
    bool hammer_ok = true;
    const auto hammer_start = Clock::now();
    {
      std::vector<std::thread> clients;
      clients.reserve(kConnections);
      for (int c = 0; c < kConnections; ++c) {
        clients.emplace_back([&socket_server, &latencies_ns, &latencies_mu,
                              &hammer_ok] {
          auto client =
              SocketClient::Connect("127.0.0.1", socket_server.port());
          std::vector<double> mine;
          mine.reserve(kQueriesPerConn);
          bool ok = client.ok();
          for (int q = 0; ok && q < kQueriesPerConn; ++q) {
            const auto start = Clock::now();
            const auto response = client->Request("release_cc g 0.25");
            const double ns = ElapsedNs(start);
            ok = response.ok() && response->rfind("ok ", 0) == 0;
            mine.push_back(ns);
          }
          std::lock_guard<std::mutex> lock(latencies_mu);
          if (!ok) hammer_ok = false;
          latencies_ns.insert(latencies_ns.end(), mine.begin(), mine.end());
        });
      }
      for (std::thread& t : clients) t.join();
    }
    const double hammer_ns = ElapsedNs(hammer_start);
    socket_server.Stop();
    if (!hammer_ok ||
        latencies_ns.size() !=
            static_cast<std::size_t>(kConnections * kQueriesPerConn)) {
      std::fprintf(stderr, "socket hammer failed\n");
      return 1;
    }
    std::sort(latencies_ns.begin(), latencies_ns.end());
    const auto percentile = [&latencies_ns](double p) {
      const std::size_t at = std::min(
          latencies_ns.size() - 1,
          static_cast<std::size_t>(p * (latencies_ns.size() - 1) + 0.5));
      return latencies_ns[at];
    };
    const double p50_ns = percentile(0.50);
    const double p99_ns = percentile(0.99);
    table.Cell("socket_hammer")
        .Cell(hammer_ns * 1e-6, 1)
        .Cell("8 conns x 32 release_cc");
    table.EndRow();
    table.Cell("socket_p50/p99")
        .Cell(p50_ns * 1e-6, 3)
        .Cell("p99 = " + std::to_string(p99_ns * 1e-6) + " ms");
    table.EndRow();
    add_record("socket_hammer", hammer_ns,
               {{"connections", kConnections},
                {"queries", kConnections * kQueriesPerConn},
                {"p50_ns", p50_ns},
                {"p99_ns", p99_ns}});
  }

  // --- family_construct: sharded construction, 4 threads vs 1 --------------
  {
    // Multi-component construct workload: ~target vertices in 1000-vertex
    // G(n, p) blocks, chunky enough that per-component induction dominates
    // the O(n+m) partition pass and shards evenly across the pool. (The
    // entity graph's <= 4-vertex cliques would measure dispatch overhead,
    // not induction.)
    Rng block_rng(17);
    const int block_size = 1000;
    const int num_blocks =
        std::max(4, static_cast<int>(target / block_size));
    std::vector<Graph> blocks;
    blocks.reserve(num_blocks);
    for (int b = 0; b < num_blocks; ++b) {
      blocks.push_back(
          gen::ErdosRenyi(block_size, 6.0 / block_size, block_rng));
    }
    const Graph multi = gen::DisjointUnion(blocks);

    constexpr int kConstructReps = 3;
    const auto construct_ns = [&multi](int threads) {
      ThreadPool pool(threads);
      ScopedThreadPool scoped(&pool);
      double best = 0.0;
      for (int rep = 0; rep < kConstructReps; ++rep) {
        const auto start = Clock::now();
        const ExtensionFamily family(multi, {});
        const double ns = ElapsedNs(start);
        if (rep == 0 || ns < best) best = ns;
      }
      return best;
    };
    const double t1 = construct_ns(1);
    const double t4 = construct_ns(4);
    const double construct_speedup = t1 / t4;
    table.Cell("family_construct")
        .Cell(t4 * 1e-6, 2)
        .Cell("sharded, 4 threads");
    table.EndRow();
    table.Cell("construct_speedup")
        .Cell(construct_speedup, 2)
        .Cell("1 thread / 4 threads (target >= 2)");
    table.EndRow();
    add_record("family_construct", t4,
               {{"construct_t1_ns", t1},
                {"construct_speedup", construct_speedup},
                {"vertices", multi.NumVertices()},
                {"edges", multi.NumEdges()}});
    if (construct_speedup < 2.0) {
      std::fprintf(stderr,
                   "WARNING: construct speedup %.2fx below the 2x target "
                   "(meaningful only on >= 4 cores)\n",
                   construct_speedup);
      all_ok = all_ok && std::getenv("NODEDP_SERVE_STRICT") == nullptr;
    }
  }

  // --- warm_overlap: pipelined warm vs phased induce-then-warm -------------
  {
    PrivateCcOptions options;
    options.delta_max = kDeltaMax;
    const std::vector<double> grid =
        AlgorithmOneDeltaGrid(graph.NumVertices(), options);

    // Phased: eager construction (an induction barrier), then the warm.
    const auto phased_start = Clock::now();
    ExtensionFamily phased(graph, options.extension);
    if (!phased.Values(grid).ok()) {
      std::fprintf(stderr, "phased warm failed\n");
      return 1;
    }
    const double phased_ns = ElapsedNs(phased_start);

    // Pipelined: deferred construction; every grid cell induces its
    // component on first touch, overlapping induction with fast-path
    // probes and LP solves.
    const auto pipelined_start = Clock::now();
    ExtensionFamily pipelined(graph, options.extension,
                              ExtensionFamily::DeferInduction{});
    if (!pipelined.Warm(grid).ok()) {
      std::fprintf(stderr, "pipelined warm failed\n");
      return 1;
    }
    const double pipelined_ns = ElapsedNs(pipelined_start);

    const double overlap = phased_ns / pipelined_ns;
    table.Cell("warm_overlap")
        .Cell(pipelined_ns * 1e-6, 1)
        .Cell("pipelined warm (phased / pipelined shown below)");
    table.EndRow();
    table.Cell("overlap_gain").Cell(overlap, 2).Cell("phased / pipelined");
    table.EndRow();
    add_record("warm_overlap", pipelined_ns,
               {{"phased_ns", phased_ns}, {"warm_overlap", overlap}});
  }

  // --- the acceptance comparison: warm sweep vs one-shot releases ----------
  std::vector<double> epsilons;
  for (int i = 0; i < kSweepEpsilons; ++i) {
    epsilons.push_back(0.25 * (i + 1));  // 0.25 .. 2.0
  }

  double sweep_ns = 0.0;
  {
    const auto start = Clock::now();
    const auto releases = server.SweepCc("g", epsilons);
    sweep_ns = ElapsedNs(start);
    if (!releases.ok() ||
        static_cast<int>(releases->size()) != kSweepEpsilons) {
      std::fprintf(stderr, "sweep failed\n");
      return 1;
    }
    table.Cell("sweep_warm").Cell(sweep_ns * 1e-6, 1).Cell("8 eps, one family");
    table.EndRow();
  }

  double oneshot_ns = 0.0;
  {
    PrivateCcOptions options;
    options.delta_max = kDeltaMax;
    Rng rng(7);
    const auto start = Clock::now();
    for (double epsilon : epsilons) {
      // The pre-family serving shape: every call rebuilds the extension
      // family from the graph (the one-shot overload).
      const auto release =
          PrivateConnectedComponents(graph, epsilon, rng, options);
      if (!release.ok()) {
        std::fprintf(stderr, "one-shot release failed: %s\n",
                     release.status().ToString().c_str());
        return 1;
      }
    }
    oneshot_ns = ElapsedNs(start);
    table.Cell("sweep_oneshot")
        .Cell(oneshot_ns * 1e-6, 1)
        .Cell("8 independent one-shot calls");
    table.EndRow();
  }

  const double speedup = oneshot_ns / sweep_ns;
  add_record("sweep_warm", sweep_ns,
             {{"epsilons", kSweepEpsilons},
              {"oneshot_ns", oneshot_ns},
              {"sweep_speedup", speedup}});
  add_record("sweep_oneshot", oneshot_ns, {{"epsilons", kSweepEpsilons}});
  table.Cell("speedup").Cell(speedup, 2).Cell("oneshot / warm (target >= 3)");
  table.EndRow();
  if (speedup < 3.0) {
    // Report loudly but do not fail the run: CI smoke boxes are noisy. The
    // acceptance measurement is the full-size local run.
    std::fprintf(stderr,
                 "WARNING: warm-sweep speedup %.2fx below the 3x target\n",
                 speedup);
    all_ok = all_ok && std::getenv("NODEDP_SERVE_STRICT") == nullptr;
  }

  // --- warm_skew: cost-ordered (LPT) vs index-ordered warm, 4 threads ------
  {
    // Adversarially skewed component mix: one giant G(n, p) block appended
    // LAST to the disjoint union, so it owns the top of the vertex range
    // and index-ordered dispatch reaches its cells at the very end — the
    // schedule where every other thread drains the tiny blocks and then
    // idles behind the giant straggler. Cost order (LPT by |C| + m_C)
    // claims the giant first and back-fills the tiny blocks around it.
    // Sizes are FIXED (this is a scheduling bench, not a scale bench — and
    // per-cell LP cost grows ~cubically, so the giant must stay small):
    // the giant's critical path sits near a third of the tiny work, the
    // regime where LPT's win over index order is largest at 4 threads.
    // Like construct_speedup, the counter is meaningful only on a machine
    // with >= 4 real cores. Runs LAST: its giant-component warms churn the
    // allocator enough to perturb the stages that follow them, so nothing
    // may follow.
    Rng skew_rng(23);
    const int giant_vertices = 600;
    const int tiny_size = 150;
    const int tiny_blocks = 54;
    std::vector<Graph> parts;
    parts.reserve(tiny_blocks + 1);
    for (int b = 0; b < tiny_blocks; ++b) {
      parts.push_back(gen::ErdosRenyi(tiny_size, 5.0 / tiny_size, skew_rng));
    }
    parts.push_back(
        gen::ErdosRenyi(giant_vertices, 6.0 / giant_vertices, skew_rng));
    const Graph skew = gen::DisjointUnion(parts);

    PrivateCcOptions options;
    options.delta_max = kDeltaMax;
    const std::vector<double> grid =
        AlgorithmOneDeltaGrid(skew.NumVertices(), options);

    constexpr int kSkewReps = 2;
    bool skew_ok = true;
    const auto skew_warm_ns = [&skew, &grid, &options, &skew_ok](
                                  ExtensionOptions::DispatchOrder order) {
      ExtensionOptions ext = options.extension;
      ext.dispatch_order = order;
      ThreadPool pool(4);
      ScopedThreadPool scoped(&pool);
      double best = 0.0;
      for (int rep = 0; rep < kSkewReps; ++rep) {
        const auto start = Clock::now();
        ExtensionFamily family(skew, ext, ExtensionFamily::DeferInduction{});
        if (!family.Warm(grid).ok()) {
          skew_ok = false;
          return 0.0;
        }
        const double ns = ElapsedNs(start);
        if (rep == 0 || ns < best) best = ns;
      }
      return best;
    };
    const double skew_cost_ns =
        skew_warm_ns(ExtensionOptions::DispatchOrder::kCostOrdered);
    const double skew_index_ns =
        skew_warm_ns(ExtensionOptions::DispatchOrder::kIndexOrdered);
    if (!skew_ok) {
      std::fprintf(stderr, "skew warm failed\n");
      return 1;
    }
    const double skew_speedup = skew_index_ns / skew_cost_ns;
    table.Cell("warm_skew")
        .Cell(skew_cost_ns * 1e-6, 1)
        .Cell("cost-ordered warm, 4 threads");
    table.EndRow();
    table.Cell("skew_speedup")
        .Cell(skew_speedup, 2)
        .Cell("index-ordered / cost-ordered (target >= 1.3)");
    table.EndRow();
    add_record("warm_skew", skew_cost_ns,
               {{"index_ns", skew_index_ns},
                {"skew_speedup", skew_speedup},
                {"components", tiny_blocks + 1},
                {"giant_vertices", giant_vertices},
                {"vertices", skew.NumVertices()},
                {"edges", skew.NumEdges()}});
    if (skew_speedup < 1.3) {
      std::fprintf(stderr,
                   "WARNING: skew speedup %.2fx below the 1.3x target "
                   "(meaningful only on >= 4 cores)\n",
                   skew_speedup);
      all_ok = all_ok && std::getenv("NODEDP_SERVE_STRICT") == nullptr;
    }
  }


  table.Print(std::cout);

  std::remove(binary_path.c_str());
  std::remove(text_path.c_str());

  const std::string path = BenchJsonPath("serve");
  const Status written = report.WriteFile(path);
  if (!written.ok()) {
    std::fprintf(stderr, "failed to write %s: %s\n", path.c_str(),
                 written.ToString().c_str());
    return 1;
  }
  std::printf("\nwrote %s (%d records)\n", path.c_str(), report.num_records());
  return all_ok ? 0 : 1;
}

// E7 — dependence on the privacy budget ε (Theorems 1.3/1.5): the error of
// Algorithm 1 scales as 1/ε (both through the Laplace scale 2Δ̂/ε and the
// GEM shift t ~ 1/ε). The sweep reports mean |err| times ε, which the
// theory predicts roughly constant until Δ̂ saturates.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_trials.h"
#include "core/extension_family.h"
#include "core/private_cc.h"
#include "eval/stats.h"
#include "eval/table.h"
#include "graph/connectivity.h"
#include "graph/generators.h"
#include "util/random.h"

int main() {
  using namespace nodedp;
  std::printf("E7: epsilon sweep on fixed workloads, trials = 300\n\n");

  const int trials = 300;
  Rng wrng(770);
  struct Workload {
    const char* name;
    Graph graph;
  };
  std::vector<Workload> workloads;
  workloads.push_back({"path(256)", gen::Path(256)});
  workloads.push_back({"entity(200,4)", gen::RandomEntityGraph(200, 4, wrng)});
  workloads.push_back({"gnp(256,c=1)", gen::ErdosRenyi(256, 1.0 / 256, wrng)});

  Table table({"workload", "epsilon", "mean|err|", "p90|err|",
               "eps*mean|err|", "Delta^ med"});
  for (Workload& w : workloads) {
    const double truth = SpanningForestSize(w.graph);
    ExtensionFamily family(w.graph);
    for (double epsilon : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
      Rng rng(771 + static_cast<uint64_t>(epsilon * 1000));
      const auto results =
          bench::RunWarmedTrials(rng, trials, [&](Rng& child) {
            return PrivateSpanningForestSize(family, epsilon, child);
          });
      std::vector<double> errors;
      std::vector<double> deltas;
      bool failed = false;
      for (const auto& release : results) {
        if (!release.ok()) {
          std::fprintf(stderr, "%s eps=%.3f: %s\n", w.name, epsilon,
                       release.status().ToString().c_str());
          failed = true;
          break;
        }
        errors.push_back(release->estimate - truth);
        deltas.push_back(release->selected_delta);
      }
      if (failed) continue;
      const ErrorSummary s = SummarizeErrors(errors);
      table.Cell(w.name)
          .Cell(epsilon, 3)
          .Cell(s.mean_abs, 2)
          .Cell(s.p90_abs, 2)
          .Cell(epsilon * s.mean_abs, 2)
          .Cell(Quantile(deltas, 0.5), 0);
      table.EndRow();
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nExpected shape: eps*mean|err| roughly flat across three orders of\n"
      "magnitude of eps (the 1/eps law of Theorem 1.3).\n");
  return 0;
}
